(* Tests for svagc_fault and the GC's graceful degradation under injected
   kernel faults: spec grammar round-trips, injector determinism and
   targeting, faulty collections producing the same heap layout as
   fault-free ones (with clean audits and fallbacks counted), and the
   zero-rate configuration staying bit-identical to a run without any
   fault plane. *)

module Fault_spec = Svagc_fault.Fault_spec
module Injector = Svagc_fault.Injector
module Config = Svagc_core.Config
module Jvm = Svagc_core.Jvm
module Runner = Svagc_workloads.Runner
module Workload = Svagc_workloads.Workload
module Machine = Svagc_vmem.Machine
module Perf = Svagc_vmem.Perf
module Heap = Svagc_heap.Heap
module Obj_model = Svagc_heap.Obj_model
module Exp_common = Svagc_experiments.Exp_common

let qtest ?(count = 100) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let spec_testable =
  Alcotest.testable Fault_spec.pp (fun (a : Fault_spec.t) b -> a = b)

let parse_ok s =
  match Fault_spec.parse s with
  | Ok t -> t
  | Error m -> Alcotest.failf "parse %S unexpectedly failed: %s" s m

let parse_err s =
  match Fault_spec.parse s with
  | Ok t -> Alcotest.failf "parse %S unexpectedly succeeded: %s" s (Fault_spec.to_string t)
  | Error m -> m

(* --- Fault_spec --- *)

let test_parse_empty () =
  Alcotest.check spec_testable "empty string" Fault_spec.empty (parse_ok "");
  Alcotest.check spec_testable "blank string" Fault_spec.empty (parse_ok "   ");
  Alcotest.(check bool) "is_empty" true (Fault_spec.is_empty (parse_ok ""))

let test_parse_clauses () =
  let t = parse_ok "pte:p=0.01,lock:every=64,ipi:p=0.002" in
  Alcotest.(check int) "three clauses" 3 (List.length t);
  (match t with
  | [ a; b; c ] ->
    Alcotest.(check bool) "pte site" true (a.Fault_spec.site = Fault_spec.Pte_resolve);
    Alcotest.(check bool) "pte p" true (a.Fault_spec.mode = Fault_spec.Probability 0.01);
    Alcotest.(check bool) "lock site" true (b.Fault_spec.site = Fault_spec.Lock_acquire);
    Alcotest.(check bool) "lock every" true (b.Fault_spec.mode = Fault_spec.Every 64);
    Alcotest.(check bool) "ipi site" true (c.Fault_spec.site = Fault_spec.Ipi_deliver);
    Alcotest.(check bool) "no window" true (a.Fault_spec.va_lo = None && a.Fault_spec.va_hi = None)
  | _ -> Alcotest.fail "expected three clauses");
  let windowed = parse_ok "pte:p=0.05:va=0x40000000-0x40400000" in
  match windowed with
  | [ c ] ->
    Alcotest.(check (option int)) "va lo" (Some 0x40000000) c.Fault_spec.va_lo;
    Alcotest.(check (option int)) "va hi" (Some 0x40400000) c.Fault_spec.va_hi
  | _ -> Alcotest.fail "expected one windowed clause"

let test_parse_decimal_va_and_spacing () =
  let t = parse_ok " pte:p=0.5:va=4096-8191 , lock:p=1 " in
  Alcotest.(check int) "two clauses" 2 (List.length t);
  match t with
  | [ c; _ ] ->
    Alcotest.(check (option int)) "decimal lo" (Some 4096) c.Fault_spec.va_lo;
    Alcotest.(check (option int)) "decimal hi" (Some 8191) c.Fault_spec.va_hi
  | _ -> Alcotest.fail "expected two clauses"

let test_parse_errors () =
  let has_sub needle hay =
    let ln = String.length needle and lh = String.length hay in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  let check_err label s needle =
    let m = parse_err s in
    Alcotest.(check bool)
      (Printf.sprintf "%s mentions %S (got %S)" label needle m)
      true (has_sub needle m)
  in
  check_err "unknown site" "disk:p=0.1" "unknown fault site";
  check_err "p too big" "pte:p=1.5" "p must be in [0,1]";
  check_err "p negative" "pte:p=-0.1" "p must be in [0,1]";
  check_err "every zero" "lock:every=0" "every must be a positive int";
  check_err "missing mode" "pte" "missing firing mode";
  check_err "missing mode with va" "pte:va=0x0-0x1000" "missing firing mode";
  check_err "unknown key" "pte:p=0.1:color=red" "unknown key";
  check_err "bad va" "pte:p=0.1:va=12" "va wants LO-HI";
  check_err "inverted va" "pte:p=0.1:va=0x2000-0x1000" "empty va range";
  check_err "duplicate mode" "pte:p=0.1:every=3" "duplicate mode"

let test_round_trip () =
  List.iter
    (fun s ->
      let t = parse_ok s in
      Alcotest.check spec_testable
        (Printf.sprintf "parse (to_string (parse %S))" s)
        t
        (parse_ok (Fault_spec.to_string t)))
    [
      "pte:p=0.01";
      "lock:every=64";
      "pte:p=0.01,lock:every=100,ipi:p=0.002";
      "pte:p=0.05:va=0x40000000-0x40400000,pte:p=1";
      "ipi:every=7,pte:p=0:va=4096-8192";
    ]

let prop_round_trip =
  let clause_gen =
    QCheck.Gen.(
      let* site = oneofl [ "pte"; "lock"; "ipi" ] in
      let* mode =
        oneof
          [
            map (fun p -> Printf.sprintf "p=%g" (float_of_int p /. 1000.0)) (int_bound 1000);
            map (fun n -> Printf.sprintf "every=%d" (n + 1)) (int_bound 200);
          ]
      in
      let* window =
        oneof
          [
            return "";
            map2
              (fun lo len -> Printf.sprintf ":va=0x%x-0x%x" lo (lo + len))
              (int_bound 0xFFFF) (int_bound 0xFFFF);
          ]
      in
      return (Printf.sprintf "%s:%s%s" site mode window))
  in
  let spec_gen =
    QCheck.Gen.(
      let* n = int_range 1 4 in
      let* clauses = list_size (return n) clause_gen in
      return (String.concat "," clauses))
  in
  qtest ~count:200 "to_string/parse round-trips"
    (QCheck.make ~print:(fun s -> s) spec_gen)
    (fun s ->
      let t = parse_ok s in
      parse_ok (Fault_spec.to_string t) = t)

(* --- Injector --- *)

(* A deterministic mixed query schedule covering all three sites and a
   spread of page addresses. *)
let query_schedule n =
  List.init n (fun i ->
      match i mod 5 with
      | 0 | 1 -> (Fault_spec.Pte_resolve, 0x40000000 + (i * 4096))
      | 2 -> (Fault_spec.Pte_resolve, i * 4096)
      | 3 -> (Fault_spec.Lock_acquire, 0)
      | _ -> (Fault_spec.Ipi_deliver, 0))

let drive inj schedule =
  List.map (fun (site, va) -> Injector.fire inj ~site ~va) schedule

let test_injector_deterministic () =
  let spec = parse_ok "pte:p=0.05,lock:p=0.1,ipi:every=3" in
  let schedule = query_schedule 1000 in
  let a = drive (Injector.create spec ~seed:42) schedule in
  let b = drive (Injector.create spec ~seed:42) schedule in
  Alcotest.(check (list bool)) "same (spec, seed) => same stream" a b;
  let c = drive (Injector.create spec ~seed:43) schedule in
  Alcotest.(check bool) "different seed => different stream" true (a <> c);
  Alcotest.(check bool) "positive rates fire eventually" true
    (List.exists (fun x -> x) a)

let test_injector_every_nth () =
  let inj = Injector.create (parse_ok "lock:every=3") ~seed:0 in
  let hits =
    List.init 9 (fun _ -> Injector.fire inj ~site:Fault_spec.Lock_acquire ~va:0)
  in
  Alcotest.(check (list bool)) "3rd, 6th, 9th"
    [ false; false; true; false; false; true; false; false; true ]
    hits;
  Alcotest.(check int) "fired" 3 (Injector.fired inj);
  Alcotest.(check int) "queries" 9 (Injector.queries inj)

let test_injector_site_isolation () =
  (* Queries on other sites must not advance a clause's counter. *)
  let inj = Injector.create (parse_ok "lock:every=2") ~seed:0 in
  Alcotest.(check bool) "lock #1" false
    (Injector.fire inj ~site:Fault_spec.Lock_acquire ~va:0);
  Alcotest.(check bool) "pte ignored" false
    (Injector.fire inj ~site:Fault_spec.Pte_resolve ~va:0x1000);
  Alcotest.(check bool) "ipi ignored" false
    (Injector.fire inj ~site:Fault_spec.Ipi_deliver ~va:0);
  Alcotest.(check bool) "lock #2 fires" true
    (Injector.fire inj ~site:Fault_spec.Lock_acquire ~va:0)

let test_injector_va_window () =
  let inj = Injector.create (parse_ok "pte:every=2:va=0x1000-0x1fff") ~seed:0 in
  let fire va = Injector.fire inj ~site:Fault_spec.Pte_resolve ~va in
  Alcotest.(check bool) "inside #1" false (fire 0x1000);
  (* Outside the window: neither fires nor advances the counter. *)
  Alcotest.(check bool) "below" false (fire 0x0fff);
  Alcotest.(check bool) "above" false (fire 0x2000);
  Alcotest.(check bool) "inside #2 fires" true (fire 0x1fff);
  Alcotest.(check int) "only window hits counted as fired" 1 (Injector.fired inj);
  (* The window does not constrain sites without addresses. *)
  let inj2 = Injector.create (parse_ok "lock:every=1:va=0x1000-0x1fff") ~seed:0 in
  Alcotest.(check bool) "lock unconstrained by window" true
    (Injector.fire inj2 ~site:Fault_spec.Lock_acquire ~va:0)

let test_injector_first_match_wins () =
  (* The first matching clause decides even when it does not fire: a
     later clause for the same site must never be consulted. *)
  let inj = Injector.create (parse_ok "pte:p=0,pte:p=1") ~seed:0 in
  for i = 1 to 50 do
    Alcotest.(check bool)
      (Printf.sprintf "query %d shadowed by p=0 clause" i)
      false
      (Injector.fire inj ~site:Fault_spec.Pte_resolve ~va:(i * 4096))
  done;
  Alcotest.(check int) "nothing fired" 0 (Injector.fired inj)

let test_injector_zero_rate_never_fires () =
  let spec = parse_ok "pte:p=0,lock:p=0,ipi:p=0" in
  let inj = Injector.create spec ~seed:123 in
  let hits = drive inj (query_schedule 500) in
  Alcotest.(check bool) "no hits" false (List.exists (fun x -> x) hits);
  Alcotest.(check int) "queries counted" 500 (Injector.queries inj)

(* --- GC degradation under faults --- *)

type run_outcome = {
  layout : (int * int * int) list;  (* (id, addr, size), address order *)
  gc_ns : float;
  app_ns : float;
  counters : (string * int) list;
  audit : (unit, string list) result;
}

(* Same shape as the `exp resilience` driver: Sigverify's MiB-scale
   objects guarantee swap traffic, so positive fault rates actually hit
   the degradation path. *)
let run_workload config =
  let machine = Exp_common.fresh_machine Svagc_vmem.Cost_model.xeon_6130 in
  let workload = Svagc_workloads.Spec.find "Sigverify" in
  let jvm =
    Runner.make_jvm ~heap_factor:1.2 ~machine
      ~collector_of:(Exp_common.collector_of ~config Exp_common.Svagc)
      workload
  in
  let rng = Svagc_util.Rng.create ~seed:42 in
  let stepper = workload.Workload.setup jvm rng in
  for _ = 1 to 25 do
    stepper ()
  done;
  ignore (Jvm.run_gc jvm);
  let heap = Jvm.heap jvm in
  Heap.sort_objects heap;
  let layout =
    List.rev
      (Svagc_util.Vec.fold_left
         (fun acc o -> (o.Obj_model.id, o.Obj_model.addr, o.Obj_model.size) :: acc)
         [] (Heap.objects heap))
  in
  {
    layout;
    gc_ns = Jvm.gc_ns jvm;
    app_ns = Jvm.app_ns jvm;
    counters = Perf.to_assoc machine.Machine.perf;
    audit = Heap.audit heap;
  }

let with_faults ?(seed = 7) rate =
  let spec =
    parse_ok (Printf.sprintf "pte:p=%g,lock:p=%g,ipi:p=%g" rate rate rate)
  in
  { Config.default with Config.fault_spec = spec; fault_seed = seed }

let counter value outcome =
  match List.assoc_opt value outcome.counters with
  | Some v -> v
  | None -> Alcotest.failf "counter %S missing" value

let layout_testable = Alcotest.(list (triple int int int))

let baseline = lazy (run_workload Config.default)

let check_audit label outcome =
  match outcome.audit with
  | Ok () -> ()
  | Error ps ->
    Alcotest.failf "%s: heap audit failed:\n  %s" label (String.concat "\n  " ps)

let test_faulty_gc_preserves_layout () =
  let base = Lazy.force baseline in
  check_audit "fault-free" base;
  let faulty = run_workload (with_faults 0.02) in
  check_audit "faulty" faulty;
  Alcotest.check layout_testable
    "faulty run reaches the same post-GC layout" base.layout faulty.layout;
  Alcotest.(check bool) "degradation actually exercised" true
    (counter "swap_fallbacks" faulty > 0);
  Alcotest.(check bool) "degradation costs simulated time" true
    (faulty.gc_ns > base.gc_ns)

let prop_faulty_gc_preserves_layout =
  qtest ~count:6 "any fault seed: same layout, clean audit"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let base = Lazy.force baseline in
      let faulty = run_workload (with_faults ~seed 0.01) in
      (match faulty.audit with
      | Ok () -> ()
      | Error ps ->
        QCheck.Test.fail_reportf "audit failed (seed %d):@ %s" seed
          (String.concat "; " ps));
      faulty.layout = base.layout)

let test_zero_rate_bit_identical () =
  (* A zero-rate spec still installs the injector (the queries are made
     and answered "no"), yet every observable — layout, both clocks at
     full float precision, all 22 perf counters — must equal the run
     without any fault plane. *)
  let base = Lazy.force baseline in
  let zero = run_workload (with_faults ~seed:99 0.0) in
  Alcotest.check layout_testable "layout" base.layout zero.layout;
  Alcotest.(check int64) "gc_ns bits"
    (Int64.bits_of_float base.gc_ns)
    (Int64.bits_of_float zero.gc_ns);
  Alcotest.(check int64) "app_ns bits"
    (Int64.bits_of_float base.app_ns)
    (Int64.bits_of_float zero.app_ns);
  Alcotest.(check (list (pair string int))) "perf counters" base.counters
    zero.counters

let test_faulty_rerun_deterministic () =
  let a = run_workload (with_faults 0.02) in
  let b = run_workload (with_faults 0.02) in
  Alcotest.check layout_testable "layout" a.layout b.layout;
  Alcotest.(check int64) "gc_ns bits"
    (Int64.bits_of_float a.gc_ns)
    (Int64.bits_of_float b.gc_ns);
  Alcotest.(check (list (pair string int))) "perf counters" a.counters b.counters;
  (* And a different seed really perturbs the fault stream (the layout
     stays the same regardless — only costs/counters move). *)
  let c = run_workload (with_faults ~seed:12345 0.02) in
  Alcotest.check layout_testable "layout is seed-independent" a.layout c.layout

let () =
  Alcotest.run "svagc_fault"
    [
      ( "fault_spec",
        [
          Alcotest.test_case "parse empty" `Quick test_parse_empty;
          Alcotest.test_case "parse clauses" `Quick test_parse_clauses;
          Alcotest.test_case "decimal va + spacing" `Quick
            test_parse_decimal_va_and_spacing;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "round trip" `Quick test_round_trip;
          prop_round_trip;
        ] );
      ( "injector",
        [
          Alcotest.test_case "deterministic" `Quick test_injector_deterministic;
          Alcotest.test_case "every Nth" `Quick test_injector_every_nth;
          Alcotest.test_case "site isolation" `Quick test_injector_site_isolation;
          Alcotest.test_case "va window" `Quick test_injector_va_window;
          Alcotest.test_case "first match wins" `Quick
            test_injector_first_match_wins;
          Alcotest.test_case "zero rate never fires" `Quick
            test_injector_zero_rate_never_fires;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "faulty GC preserves layout" `Quick
            test_faulty_gc_preserves_layout;
          prop_faulty_gc_preserves_layout;
          Alcotest.test_case "zero rate bit-identical" `Quick
            test_zero_rate_bit_identical;
          Alcotest.test_case "faulty rerun deterministic" `Quick
            test_faulty_rerun_deterministic;
        ] );
    ]
