(* Smoke checker for `svagc_cli trace` output: the file must parse as
   Chrome trace-event JSON and contain complete spans for all four LISP2
   phases.  Exits non-zero with a message otherwise (used from the
   runtest smoke rule in test/dune). *)

module Json = Svagc_trace.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("check_trace: " ^ m); exit 1) fmt

let () =
  let file = if Array.length Sys.argv > 1 then Sys.argv.(1) else fail "usage: check_trace FILE" in
  let contents =
    let ic = open_in_bin file in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  in
  let json =
    try Json.of_string contents
    with Json.Parse_error msg -> fail "%s does not parse: %s" file msg
  in
  let events =
    match Json.member "traceEvents" json with
    | Some l -> ( try Json.to_list_exn l with _ -> fail "traceEvents is not a list")
    | None -> fail "no traceEvents field"
  in
  if events = [] then fail "traceEvents is empty";
  let span_names =
    List.filter_map
      (fun e ->
        match (Json.member "ph" e, Json.member "name" e) with
        | Some (Json.Str "X"), Some (Json.Str name) -> Some name
        | _ -> None)
      events
  in
  List.iter
    (fun phase ->
      if not (List.mem phase span_names) then
        fail "%s has no %S phase span" file phase)
    [ "mark"; "forward"; "adjust"; "compact" ];
  Printf.printf "check_trace: %s ok (%d events, %d spans)\n" file
    (List.length events) (List.length span_names)
