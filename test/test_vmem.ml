(* Tests for the virtual-memory substrate: addresses, PTEs, physical
   memory, page tables, TLB, cache model, cost model, machine, address
   spaces. *)

open Svagc_vmem

let qtest ?(count = 200) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* --- Addr --- *)

let test_addr_constants () =
  Alcotest.(check int) "page size" 4096 Addr.page_size;
  Alcotest.(check int) "entries" 512 Addr.entries_per_table;
  Alcotest.(check int) "pages per pmd" 512 Addr.pages_per_pmd

let test_addr_align () =
  Alcotest.(check int) "align_up exact" 4096 (Addr.align_up 4096);
  Alcotest.(check int) "align_up" 8192 (Addr.align_up 4097);
  Alcotest.(check int) "align_down" 4096 (Addr.align_down 8191);
  Alcotest.(check bool) "aligned" true (Addr.is_page_aligned 8192);
  Alcotest.(check bool) "unaligned" false (Addr.is_page_aligned 8193)

let test_addr_pages_spanned () =
  Alcotest.(check int) "one byte" 1 (Addr.pages_spanned 1);
  Alcotest.(check int) "one page" 1 (Addr.pages_spanned 4096);
  Alcotest.(check int) "just over" 2 (Addr.pages_spanned 4097);
  Alcotest.(check int) "zero" 0 (Addr.pages_spanned 0)

let test_addr_indices () =
  (* A known decomposition: vpn = pte + 512*pmd + 512^2*pud + ... *)
  let va = Addr.of_page ((3 * 512 * 512) + (5 * 512) + 7) in
  Alcotest.(check int) "pte" 7 (Addr.pte_index va);
  Alcotest.(check int) "pmd" 5 (Addr.pmd_index va);
  Alcotest.(check int) "pud" 3 (Addr.pud_index va);
  Alcotest.(check int) "p4d" 0 (Addr.p4d_index va)

let prop_addr_roundtrip =
  qtest "addr: of_page/page_number roundtrip"
    QCheck.(int_range 0 (1 lsl 35))
    (fun vpn -> Addr.page_number (Addr.of_page vpn) = vpn)

let prop_addr_align_up_invariants =
  qtest "addr: align_up is aligned and minimal"
    QCheck.(int_range 0 (1 lsl 40))
    (fun va ->
      let a = Addr.align_up va in
      Addr.is_page_aligned a && a >= va && a - va < Addr.page_size)

(* --- Pte --- *)

let test_pte () =
  Alcotest.(check bool) "none absent" false (Pte.is_present Pte.none);
  let v = Pte.make ~frame:42 in
  Alcotest.(check bool) "present" true (Pte.is_present v);
  Alcotest.(check int) "frame" 42 (Pte.frame_exn v);
  Alcotest.check_raises "frame of none"
    (Invalid_argument "Pte.frame_exn: entry not present") (fun () ->
      ignore (Pte.frame_exn Pte.none))

(* --- Phys_mem --- *)

let test_phys_alloc_free () =
  let pm = Phys_mem.create ~frames:4 in
  let f1 = Phys_mem.alloc_frame pm in
  let f2 = Phys_mem.alloc_frame pm in
  Alcotest.(check bool) "distinct" true (f1 <> f2);
  Alcotest.(check int) "in use" 2 (Phys_mem.frames_in_use pm);
  Phys_mem.free_frame pm f1;
  Alcotest.(check int) "freed" 1 (Phys_mem.frames_in_use pm);
  Alcotest.check_raises "double free"
    (Invalid_argument "Phys_mem.free_frame: frame not in use") (fun () ->
      Phys_mem.free_frame pm f1)

let test_phys_out_of_frames () =
  let pm = Phys_mem.create ~frames:2 in
  ignore (Phys_mem.alloc_frame pm);
  ignore (Phys_mem.alloc_frame pm);
  Alcotest.check_raises "exhausted" Phys_mem.Out_of_frames (fun () ->
      ignore (Phys_mem.alloc_frame pm))

let test_phys_read_write () =
  let pm = Phys_mem.create ~frames:2 in
  let f = Phys_mem.alloc_frame pm in
  Phys_mem.write pm ~frame:f ~off:100 ~src:(Bytes.of_string "hello") ~src_off:0
    ~len:5;
  Alcotest.(check string) "readback" "hello"
    (Bytes.to_string (Phys_mem.read pm ~frame:f ~off:100 ~len:5));
  Alcotest.(check string) "zero fill" "\000"
    (Bytes.to_string (Phys_mem.read pm ~frame:f ~off:0 ~len:1))

let test_phys_blit () =
  let pm = Phys_mem.create ~frames:2 in
  let a = Phys_mem.alloc_frame pm and b = Phys_mem.alloc_frame pm in
  Phys_mem.write pm ~frame:a ~off:0 ~src:(Bytes.of_string "xyz") ~src_off:0 ~len:3;
  Phys_mem.blit pm ~src_frame:a ~src_off:0 ~dst_frame:b ~dst_off:10 ~len:3;
  Alcotest.(check string) "blitted" "xyz"
    (Bytes.to_string (Phys_mem.read pm ~frame:b ~off:10 ~len:3))

let test_phys_range_check () =
  let pm = Phys_mem.create ~frames:1 in
  let f = Phys_mem.alloc_frame pm in
  Alcotest.check_raises "escape" (Invalid_argument "Phys_mem: range escapes the page")
    (fun () -> ignore (Phys_mem.read pm ~frame:f ~off:4090 ~len:10))

(* --- Page_table --- *)

let test_pt_get_set () =
  let pt = Page_table.create () in
  let va = Addr.of_page 123456 in
  Alcotest.(check bool) "unmapped" false (Pte.is_present (Page_table.get_pte pt va));
  Page_table.set_pte pt va (Pte.make ~frame:9);
  Alcotest.(check int) "mapped" 9 (Pte.frame_exn (Page_table.get_pte pt va));
  Alcotest.(check (option (pair int int))) "translate" (Some (9, 17))
    (Page_table.translate pt (va + 17))

let test_pt_leaf_sharing () =
  let pt = Page_table.create () in
  let va = Addr.of_page 1000 in
  Page_table.set_pte pt va (Pte.make ~frame:1);
  Page_table.set_pte pt (va + Addr.page_size) (Pte.make ~frame:2);
  match Page_table.find_leaf pt va with
  | None -> Alcotest.fail "leaf missing"
  | Some leaf ->
    (* Both pages are in the same PMD region, hence the same leaf array. *)
    Alcotest.(check int) "slot 1" 1 (Pte.frame_exn leaf.(Addr.pte_index va));
    Alcotest.(check int) "slot 2" 2
      (Pte.frame_exn leaf.(Addr.pte_index (va + Addr.page_size)))

let test_pt_iter_mapped () =
  let pt = Page_table.create () in
  let vpns = [ 5; 700; 1 lsl 20; (1 lsl 27) + 3 ] in
  List.iteri (fun i vpn -> Page_table.set_pte pt (Addr.of_page vpn) (Pte.make ~frame:i)) vpns;
  Alcotest.(check int) "mapped count" 4 (Page_table.mapped_pages pt);
  let seen = ref [] in
  Page_table.iter_mapped pt ~f:(fun ~vpn ~frame:_ -> seen := vpn :: !seen);
  Alcotest.(check (list int)) "vpns recovered" (List.sort compare vpns)
    (List.sort compare !seen)

let prop_pt_model =
  qtest ~count:60 "page table agrees with a hashtable model"
    QCheck.(list (pair (int_range 0 5000) (int_range 0 100)))
    (fun ops ->
      let pt = Page_table.create () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (vpn, frame) ->
          let va = Addr.of_page vpn in
          if frame = 0 then begin
            Page_table.set_pte pt va Pte.none;
            Hashtbl.remove model vpn
          end
          else begin
            Page_table.set_pte pt va (Pte.make ~frame);
            Hashtbl.replace model vpn frame
          end)
        ops;
      Hashtbl.fold
        (fun vpn frame acc ->
          acc && Page_table.get_pte pt (Addr.of_page vpn) = Pte.make ~frame)
        model true
      && Page_table.mapped_pages pt = Hashtbl.length model)

(* --- Tlb --- *)

let test_tlb_hit_miss () =
  let tlb = Tlb.create () in
  Alcotest.(check (option int)) "cold miss" None (Tlb.lookup tlb ~asid:1 ~vpn:10);
  Tlb.insert tlb ~asid:1 ~vpn:10 ~frame:99;
  Alcotest.(check (option int)) "hit" (Some 99) (Tlb.lookup tlb ~asid:1 ~vpn:10);
  Alcotest.(check (option int)) "other asid misses" None
    (Tlb.lookup tlb ~asid:2 ~vpn:10);
  let st = Tlb.stats tlb in
  Alcotest.(check int) "hits" 1 st.Tlb.hits;
  Alcotest.(check int) "misses" 2 st.Tlb.misses

let test_tlb_flush_asid () =
  let tlb = Tlb.create () in
  Tlb.insert tlb ~asid:1 ~vpn:1 ~frame:1;
  Tlb.insert tlb ~asid:2 ~vpn:2 ~frame:2;
  Tlb.flush_asid tlb ~asid:1;
  Alcotest.(check (option int)) "asid 1 gone" None (Tlb.lookup tlb ~asid:1 ~vpn:1);
  Alcotest.(check (option int)) "asid 2 stays" (Some 2) (Tlb.lookup tlb ~asid:2 ~vpn:2)

let test_tlb_flush_page () =
  let tlb = Tlb.create () in
  Tlb.insert tlb ~asid:1 ~vpn:1 ~frame:1;
  Tlb.insert tlb ~asid:1 ~vpn:2 ~frame:2;
  Tlb.flush_page tlb ~asid:1 ~vpn:1;
  Alcotest.(check (option int)) "flushed" None (Tlb.lookup tlb ~asid:1 ~vpn:1);
  Alcotest.(check (option int)) "kept" (Some 2) (Tlb.lookup tlb ~asid:1 ~vpn:2)

let test_tlb_capacity_eviction () =
  let tlb = Tlb.create ~entries:8 ~ways:2 () in
  (* Fill one set (vpns congruent mod 4) beyond its 2 ways. *)
  Tlb.insert tlb ~asid:1 ~vpn:0 ~frame:0;
  Tlb.insert tlb ~asid:1 ~vpn:4 ~frame:4;
  ignore (Tlb.lookup tlb ~asid:1 ~vpn:0);
  (* vpn 4 is now LRU; inserting vpn 8 must evict it. *)
  Tlb.insert tlb ~asid:1 ~vpn:8 ~frame:8;
  Alcotest.(check (option int)) "lru evicted" None (Tlb.lookup tlb ~asid:1 ~vpn:4);
  Alcotest.(check (option int)) "mru kept" (Some 0) (Tlb.lookup tlb ~asid:1 ~vpn:0)

let test_tlb_occupancy () =
  let tlb = Tlb.create ~entries:8 ~ways:2 () in
  Alcotest.(check int) "empty" 0 (Tlb.occupied tlb);
  Tlb.insert tlb ~asid:1 ~vpn:3 ~frame:1;
  Alcotest.(check int) "one" 1 (Tlb.occupied tlb);
  Tlb.flush_all tlb;
  Alcotest.(check int) "flushed" 0 (Tlb.occupied tlb)

(* --- Cache_sim --- *)

let test_cache_hit_after_fill () =
  let c = Cache_sim.create ~size_bytes:4096 ~line_bytes:64 ~ways:2 () in
  Cache_sim.access c ~addr:0;
  Cache_sim.access c ~addr:0;
  let st = Cache_sim.stats c in
  Alcotest.(check int) "accesses" 2 st.Cache_sim.accesses;
  Alcotest.(check int) "one miss" 1 st.Cache_sim.misses

let test_cache_capacity_eviction () =
  (* 2 sets x 2 ways of 64B lines = 256 B cache; stream 3 lines into the
     same set and re-touch the first: it must have been evicted. *)
  let c = Cache_sim.create ~size_bytes:256 ~line_bytes:64 ~ways:2 () in
  let set_stride = 2 * 64 in
  Cache_sim.access c ~addr:0;
  Cache_sim.access c ~addr:set_stride;
  Cache_sim.access c ~addr:(2 * set_stride);
  Cache_sim.reset_stats c;
  Cache_sim.access c ~addr:0;
  Alcotest.(check int) "evicted -> miss" 1 (Cache_sim.stats c).Cache_sim.misses

let test_cache_access_range () =
  let c = Cache_sim.create () in
  Cache_sim.access_range c ~addr:0 ~len:256;
  Alcotest.(check int) "4 lines" 4 (Cache_sim.stats c).Cache_sim.accesses;
  Cache_sim.reset_stats c;
  Cache_sim.access_range c ~addr:60 ~len:8;
  Alcotest.(check int) "straddles two lines" 2 (Cache_sim.stats c).Cache_sim.accesses

let test_cache_miss_rate () =
  let c = Cache_sim.create () in
  Alcotest.(check (float 1e-9)) "no accesses" 0.0 (Cache_sim.miss_rate c);
  Cache_sim.access c ~addr:0;
  Alcotest.(check (float 1e-9)) "all miss" 100.0 (Cache_sim.miss_rate c)

(* --- Cost_model --- *)

let test_cost_memmove_tiers () =
  let m = Cost_model.xeon_6130 in
  let small = Cost_model.memmove_bw m ~bytes_len:4096 in
  let big = Cost_model.memmove_bw m ~bytes_len:(64 * 1024 * 1024) in
  Alcotest.(check bool) "cache tier faster" true (small > big);
  Alcotest.(check (float 1e-9)) "cache tier" m.Cost_model.cache_copy_bw small;
  Alcotest.(check bool) "big approaches dram bw" true
    (big < m.Cost_model.dram_copy_bw *. 1.2)

let test_cost_contention () =
  let m = Cost_model.xeon_6130 in
  let solo = Cost_model.contended_bw m ~streams:1 ~bw:9.0 in
  let crowded = Cost_model.contended_bw m ~streams:32 ~bw:9.0 in
  Alcotest.(check (float 1e-9)) "solo unconstrained" 9.0 solo;
  Alcotest.(check (float 1e-6)) "32 streams share the ceiling"
    (m.Cost_model.machine_copy_bw /. 32.0) crowded

let test_cost_presets_sane () =
  List.iter
    (fun (m : Cost_model.t) ->
      Alcotest.(check bool) (m.Cost_model.name ^ " positive costs") true
        (m.Cost_model.pt_entry_ns > 0.0 && m.Cost_model.syscall_ns > 0.0
        && m.Cost_model.dram_copy_bw > 0.0
        && m.Cost_model.cache_copy_bw > m.Cost_model.dram_copy_bw))
    Cost_model.presets

(* --- Clock --- *)

let test_clock () =
  let c = Clock.create () in
  Clock.advance c 10.0;
  Clock.advance c 5.0;
  Alcotest.(check (float 1e-9)) "sum" 15.0 (Clock.now_ns c);
  Alcotest.check_raises "negative" (Invalid_argument "Clock.advance: negative delta")
    (fun () -> Clock.advance c (-1.0));
  Clock.reset c;
  Alcotest.(check (float 1e-9)) "reset" 0.0 (Clock.now_ns c)

(* --- Machine --- *)

let test_machine_asids () =
  let m = Machine.create ~phys_mib:1 Cost_model.i5_7600 in
  let a = Machine.fresh_asid m and b = Machine.fresh_asid m in
  Alcotest.(check bool) "distinct asids" true (a <> b)

let test_machine_ipi_cost () =
  let m = Machine.create ~ncores:8 ~phys_mib:1 Cost_model.xeon_6130 in
  let cost = Machine.ipi_broadcast_cost m ~from_core:0 in
  Alcotest.(check int) "7 ipis" 7 m.Machine.perf.Perf.ipis_sent;
  Alcotest.(check bool) "cost = latency + acks" true
    (cost
    = m.Machine.cost.Cost_model.ipi_ns
      +. (6.0 *. m.Machine.cost.Cost_model.ipi_ack_ns))

let test_machine_single_core_ipi_free () =
  let m = Machine.create ~ncores:1 ~phys_mib:1 Cost_model.xeon_6130 in
  Alcotest.(check (float 1e-9)) "no remote cores" 0.0
    (Machine.ipi_broadcast_cost m ~from_core:0)

let test_machine_flush_all_cores () =
  let m = Machine.create ~ncores:4 ~phys_mib:1 Cost_model.xeon_6130 in
  (* Seed every core's TLB with the asid then flush everywhere. *)
  Array.iter (fun c -> Tlb.insert c.Machine.tlb ~asid:7 ~vpn:1 ~frame:1) m.Machine.cores;
  ignore (Machine.flush_tlb_all_cores m ~asid:7 ~from_core:0);
  Array.iter
    (fun c ->
      Alcotest.(check (option int)) "invalidated" None
        (Tlb.lookup c.Machine.tlb ~asid:7 ~vpn:1))
    m.Machine.cores

(* --- Address_space --- *)

let machine () = Machine.create ~phys_mib:32 Cost_model.xeon_6130

let test_as_map_rw () =
  let aspace = Address_space.create (machine ()) in
  let va = 1 lsl 30 in
  Address_space.map_range aspace ~va ~pages:4;
  Alcotest.(check int) "mapped" 4 (Address_space.mapped_pages aspace);
  Address_space.write_bytes aspace ~va:(va + 100) ~src:(Bytes.of_string "svagc");
  Alcotest.(check string) "readback" "svagc"
    (Bytes.to_string (Address_space.read_bytes aspace ~va:(va + 100) ~len:5))

let test_as_cross_page_io () =
  let aspace = Address_space.create (machine ()) in
  let va = 1 lsl 30 in
  Address_space.map_range aspace ~va ~pages:2;
  let data = Bytes.init 1000 (fun i -> Char.chr (i mod 256)) in
  let start = va + Addr.page_size - 500 in
  Address_space.write_bytes aspace ~va:start ~src:data;
  Alcotest.(check bytes) "cross-page roundtrip" data
    (Address_space.read_bytes aspace ~va:start ~len:1000)

let test_as_unmapped_errors () =
  let aspace = Address_space.create (machine ()) in
  Alcotest.(check bool) "raises on unmapped read" true
    (try
       ignore (Address_space.read_bytes aspace ~va:4096 ~len:1);
       false
     with Invalid_argument _ -> true)

let test_as_double_map_rejected () =
  let aspace = Address_space.create (machine ()) in
  Address_space.map_range aspace ~va:8192 ~pages:1;
  Alcotest.(check bool) "double map rejected" true
    (try
       Address_space.map_range aspace ~va:8192 ~pages:1;
       false
     with Invalid_argument _ -> true)

let test_as_unmap_frees_frames () =
  let m = machine () in
  let aspace = Address_space.create m in
  Address_space.map_range aspace ~va:4096 ~pages:3;
  let used = Phys_mem.frames_in_use m.Machine.phys in
  Address_space.unmap_range aspace ~va:4096 ~pages:3;
  Alcotest.(check int) "frames returned" (used - 3)
    (Phys_mem.frames_in_use m.Machine.phys)

let test_as_checksum_sensitivity () =
  let aspace = Address_space.create (machine ()) in
  Address_space.map_range aspace ~va:4096 ~pages:1;
  let c0 = Address_space.checksum aspace ~va:4096 ~len:4096 in
  Address_space.write_u8 aspace ~va:5000 1;
  let c1 = Address_space.checksum aspace ~va:4096 ~len:4096 in
  Alcotest.(check bool) "checksum changes" true (c0 <> c1)

let test_as_i64_roundtrip () =
  let aspace = Address_space.create (machine ()) in
  Address_space.map_range aspace ~va:4096 ~pages:2;
  (* Straddle the page boundary on purpose. *)
  Address_space.write_i64 aspace ~va:8190 0x1122334455667788L;
  Alcotest.(check int64) "i64 roundtrip" 0x1122334455667788L
    (Address_space.read_i64 aspace ~va:8190)

let test_as_touch_counts () =
  let m = machine () in
  let aspace = Address_space.create m in
  Address_space.map_range aspace ~va:4096 ~pages:1;
  Address_space.touch aspace ~core:0 ~va:4096;
  Address_space.touch aspace ~core:0 ~va:4096;
  let st = Tlb.stats (Machine.core m 0).Machine.tlb in
  Alcotest.(check int) "tlb: one miss then one hit" 1 st.Tlb.misses;
  Alcotest.(check int) "tlb hit" 1 st.Tlb.hits;
  Alcotest.(check int) "llc accesses" 2 (Cache_sim.stats m.Machine.llc).Cache_sim.accesses

let prop_as_fill_checksum_deterministic =
  qtest ~count:40 "address space: same writes, same checksum"
    QCheck.(int_range 1 6)
    (fun pages ->
      let mk () =
        let aspace = Address_space.create (machine ()) in
        Address_space.map_range aspace ~va:4096 ~pages;
        Address_space.fill aspace ~va:4096 ~len:(pages * 4096) 'x';
        Address_space.checksum aspace ~va:4096 ~len:(pages * 4096)
      in
      mk () = mk ())

(* --- Perf --- *)

let bump_some_counters p =
  p.Perf.syscalls <- 3;
  p.Perf.swapva_calls <- 2;
  p.Perf.bytes_copied <- 4096;
  p.Perf.ipis_sent <- 7;
  p.Perf.alloc_bytes <- 1 lsl 20

let test_perf_copy_is_snapshot () =
  let p = Perf.create () in
  bump_some_counters p;
  let snap = Perf.copy p in
  p.Perf.syscalls <- 100;
  p.Perf.bytes_copied <- 0;
  Alcotest.(check int) "copy unaffected by later writes" 3 snap.Perf.syscalls;
  Alcotest.(check int) "copy keeps bytes" 4096 snap.Perf.bytes_copied;
  Alcotest.(check bool) "copy equals original field-wise" true
    (Perf.to_assoc snap
    = [
        ("syscalls", 3); ("swapva_calls", 2); ("memmove_calls", 0);
        ("ptes_swapped", 0); ("pt_walks", 0); ("pmd_cache_hits", 0);
        ("leaf_runs", 0); ("runs_coalesced", 0); ("pmd_leaf_swaps", 0);
        ("bytes_copied", 4096); ("bytes_remapped", 0); ("tlb_flush_local", 0);
        ("tlb_flush_page", 0); ("tlb_flush_all", 0); ("ipis_sent", 7);
        ("ipis_lost", 0);
        ("shootdown_broadcasts", 0); ("pins", 0); ("gc_cycles", 0);
        ("swap_retries", 0); ("swap_fallbacks", 0); ("alloc_waste_bytes", 0);
        ("alloc_bytes", 1 lsl 20);
        ("pages_swapped_out", 0); ("pages_swapped_in", 0); ("major_faults", 0);
        ("reclaim_scans", 0); ("kswapd_wakes", 0); ("swap_io_errors", 0);
        ("tier_demotions", 0); ("tier_promotions", 0);
        ("admission_rejects", 0); ("sched_scheduled", 0);
        ("sched_dispatched", 0); ("sched_cancelled", 0);
      ])

let test_perf_reset () =
  let p = Perf.create () in
  bump_some_counters p;
  Perf.reset p;
  List.iter
    (fun (name, v) -> Alcotest.(check int) (name ^ " zeroed") 0 v)
    (Perf.to_assoc p)

let test_perf_diff_roundtrip () =
  let p = Perf.create () in
  bump_some_counters p;
  let before = Perf.copy p in
  p.Perf.syscalls <- p.Perf.syscalls + 10;
  p.Perf.ipis_sent <- p.Perf.ipis_sent + 1;
  let d = Perf.diff ~after:p ~before in
  Alcotest.(check int) "syscall delta" 10 d.Perf.syscalls;
  Alcotest.(check int) "ipi delta" 1 d.Perf.ipis_sent;
  Alcotest.(check int) "untouched delta" 0 d.Perf.bytes_copied;
  (* before + diff = after, field by field *)
  List.iter2
    (fun (name, b) ((_, d), (_, a)) ->
      Alcotest.(check int) (name ^ " recomposes") a (b + d))
    (Perf.to_assoc before)
    (List.combine (Perf.to_assoc d) (Perf.to_assoc p))

let test_perf_diff_self_is_zero () =
  let p = Perf.create () in
  bump_some_counters p;
  let d = Perf.diff ~after:p ~before:p in
  List.iter
    (fun (name, v) -> Alcotest.(check int) (name ^ " self-diff") 0 v)
    (Perf.to_assoc d)

let test_perf_to_assoc_covers_all_counters () =
  let names = List.map fst (Perf.to_assoc (Perf.create ())) in
  Alcotest.(check int) "35 counters" 35 (List.length names);
  Alcotest.(check int) "no duplicate names" 35
    (List.length (List.sort_uniq compare names))

let () =
  Alcotest.run "svagc_vmem"
    [
      ( "addr",
        [
          Alcotest.test_case "constants" `Quick test_addr_constants;
          Alcotest.test_case "align" `Quick test_addr_align;
          Alcotest.test_case "pages_spanned" `Quick test_addr_pages_spanned;
          Alcotest.test_case "indices" `Quick test_addr_indices;
          prop_addr_roundtrip;
          prop_addr_align_up_invariants;
        ] );
      ("pte", [ Alcotest.test_case "encode/decode" `Quick test_pte ]);
      ( "phys_mem",
        [
          Alcotest.test_case "alloc/free" `Quick test_phys_alloc_free;
          Alcotest.test_case "out of frames" `Quick test_phys_out_of_frames;
          Alcotest.test_case "read/write" `Quick test_phys_read_write;
          Alcotest.test_case "blit" `Quick test_phys_blit;
          Alcotest.test_case "range check" `Quick test_phys_range_check;
        ] );
      ( "page_table",
        [
          Alcotest.test_case "get/set/translate" `Quick test_pt_get_set;
          Alcotest.test_case "leaf sharing" `Quick test_pt_leaf_sharing;
          Alcotest.test_case "iter mapped" `Quick test_pt_iter_mapped;
          prop_pt_model;
        ] );
      ( "tlb",
        [
          Alcotest.test_case "hit/miss" `Quick test_tlb_hit_miss;
          Alcotest.test_case "flush asid" `Quick test_tlb_flush_asid;
          Alcotest.test_case "flush page" `Quick test_tlb_flush_page;
          Alcotest.test_case "LRU eviction" `Quick test_tlb_capacity_eviction;
          Alcotest.test_case "occupancy" `Quick test_tlb_occupancy;
        ] );
      ( "cache_sim",
        [
          Alcotest.test_case "hit after fill" `Quick test_cache_hit_after_fill;
          Alcotest.test_case "capacity eviction" `Quick test_cache_capacity_eviction;
          Alcotest.test_case "access range" `Quick test_cache_access_range;
          Alcotest.test_case "miss rate" `Quick test_cache_miss_rate;
        ] );
      ( "cost_model",
        [
          Alcotest.test_case "memmove tiers" `Quick test_cost_memmove_tiers;
          Alcotest.test_case "contention" `Quick test_cost_contention;
          Alcotest.test_case "presets sane" `Quick test_cost_presets_sane;
        ] );
      ("clock", [ Alcotest.test_case "advance/reset" `Quick test_clock ]);
      ( "machine",
        [
          Alcotest.test_case "asids" `Quick test_machine_asids;
          Alcotest.test_case "ipi broadcast cost" `Quick test_machine_ipi_cost;
          Alcotest.test_case "single-core ipi free" `Quick test_machine_single_core_ipi_free;
          Alcotest.test_case "flush all cores" `Quick test_machine_flush_all_cores;
        ] );
      ( "address_space",
        [
          Alcotest.test_case "map/read/write" `Quick test_as_map_rw;
          Alcotest.test_case "cross-page io" `Quick test_as_cross_page_io;
          Alcotest.test_case "unmapped errors" `Quick test_as_unmapped_errors;
          Alcotest.test_case "double map rejected" `Quick test_as_double_map_rejected;
          Alcotest.test_case "unmap frees frames" `Quick test_as_unmap_frees_frames;
          Alcotest.test_case "checksum sensitivity" `Quick test_as_checksum_sensitivity;
          Alcotest.test_case "i64 roundtrip" `Quick test_as_i64_roundtrip;
          Alcotest.test_case "touch counts" `Quick test_as_touch_counts;
          prop_as_fill_checksum_deterministic;
        ] );
      ( "perf",
        [
          Alcotest.test_case "copy is a snapshot" `Quick test_perf_copy_is_snapshot;
          Alcotest.test_case "reset zeroes" `Quick test_perf_reset;
          Alcotest.test_case "diff round-trip" `Quick test_perf_diff_roundtrip;
          Alcotest.test_case "self-diff is zero" `Quick test_perf_diff_self_is_zero;
          Alcotest.test_case "to_assoc covers counters" `Quick
            test_perf_to_assoc_covers_all_counters;
        ] );
    ]
