(* Tests for the reporting library (lib/metrics). *)

module Table = Svagc_metrics.Table
module Report = Svagc_metrics.Report

let test_table_basic () =
  let s =
    Table.render ~headers:[ "a"; "b" ] [ [ "x"; "1" ]; [ "long-cell"; "22" ] ]
  in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "header + sep x3 + 2 rows" 6 (List.length lines);
  (* All lines share the same width. *)
  let widths = List.map String.length lines in
  List.iter (fun w -> Alcotest.(check int) "aligned" (List.hd widths) w) widths;
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "contains cell" true (contains s "long-cell")

let test_table_pads_short_rows () =
  let s = Table.render ~headers:[ "a"; "b"; "c" ] [ [ "only" ] ] in
  Alcotest.(check bool) "renders without exception" true (String.length s > 0)

let test_table_align_mismatch () =
  Alcotest.(check bool) "aligns length checked" true
    (try
       ignore (Table.render ~aligns:[ Table.Left ] ~headers:[ "a"; "b" ] []);
       false
     with Invalid_argument _ -> true)

let test_report_ns () =
  Alcotest.(check string) "ns" "500ns" (Report.ns 500.0);
  Alcotest.(check string) "us" "1.50us" (Report.ns 1500.0);
  Alcotest.(check string) "ms" "2.50ms" (Report.ns 2_500_000.0);
  Alcotest.(check string) "s" "1.200s" (Report.ns 1.2e9)

let test_report_bytes () =
  Alcotest.(check string) "b" "100B" (Report.bytes 100);
  Alcotest.(check string) "kib" "1.5KiB" (Report.bytes 1536);
  Alcotest.(check string) "mib" "2.0MiB" (Report.bytes (2 * 1024 * 1024));
  Alcotest.(check string) "gib" "1.00GiB" (Report.bytes (1024 * 1024 * 1024))

let test_report_pct_speedup () =
  Alcotest.(check string) "pct" "12.3%" (Report.pct 12.34);
  Alcotest.(check string) "speedup" "3.82x" (Report.speedup 3.82)

(* --- Timeline --- *)

module Timeline = Svagc_metrics.Timeline
module Tracer = Svagc_trace.Tracer

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_timeline_render () =
  ignore (Tracer.stop ());
  let t = Tracer.start ~capacity:32 () in
  Fun.protect
    ~finally:(fun () -> ignore (Tracer.stop ()))
    (fun () ->
      Tracer.set_context ~pid:0 ~tid:0 ();
      Tracer.name_process ~pid:0 "jvm-a";
      Tracer.span_begin ~cat:"gc" "cycle";
      Tracer.span_begin ~cat:"gc" "mark";
      Tracer.span_end ~dur_ns:40.0 ();
      Tracer.instant ~cat:"kernel" ~tid:3 "ipi";
      Tracer.span_end ~dur_ns:100.0 ();
      let s = Timeline.render ~width:20 t in
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("mentions " ^ needle) true (contains s needle))
        [ "pid 0"; "jvm-a"; "cycle"; "mark"; "ipi" ];
      Alcotest.(check bool) "draws bars" true (contains s "="))

let test_timeline_empty_trace () =
  ignore (Tracer.stop ());
  let t = Tracer.start ~capacity:4 () in
  ignore (Tracer.stop ());
  (* Rendering an empty trace must not raise and stays quiet. *)
  let s = Timeline.render t in
  Alcotest.(check bool) "no bars" false (contains s "=")

let () =
  Alcotest.run "svagc_metrics"
    [
      ( "table",
        [
          Alcotest.test_case "basic" `Quick test_table_basic;
          Alcotest.test_case "short rows" `Quick test_table_pads_short_rows;
          Alcotest.test_case "align mismatch" `Quick test_table_align_mismatch;
        ] );
      ( "report",
        [
          Alcotest.test_case "ns scaling" `Quick test_report_ns;
          Alcotest.test_case "bytes scaling" `Quick test_report_bytes;
          Alcotest.test_case "pct/speedup" `Quick test_report_pct_speedup;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "render" `Quick test_timeline_render;
          Alcotest.test_case "empty trace" `Quick test_timeline_empty_trace;
        ] );
    ]
